//! Bit-identical-results contract for the event-driven scheduler rewrite.
//!
//! The hot-loop rewrite (VP-frontier cursor, per-phys wakeup lists,
//! worklist untainting) is a pure performance change: every simulated
//! cycle count, every `MachineStats` counter, and every
//! attacker-observation digest must come out byte-identical to the
//! pre-rewrite scheduler. This harness runs the full Figure-7 workload ×
//! Table-2 config matrix under both threat models and compares each cell
//! against goldens captured from the pre-rewrite code
//! (`tests/data/equivalence_goldens.json`).
//!
//! Regenerating goldens (only legitimate when the *semantics* of the
//! simulator deliberately change, never for a scheduling refactor):
//!
//! ```text
//! SPT_BLESS_EQUIVALENCE=1 cargo test --release --test equivalence
//! ```

use spt_bench::runner::{default_jobs, prepare_machine, run_indexed};
use spt_repro::core::{Config, ThreatModel};
use spt_repro::ooo::RunLimits;
use spt_repro::workloads::{full_suite, Scale, Workload};
use spt_util::{Fnv64, Json};
use std::path::PathBuf;

/// Fixed retired-instruction budget. Small enough that the 400-cell
/// matrix stays fast in debug builds; large enough that every pipeline
/// mechanism (squash, STL forwarding, grace-window retirement, broadcast
/// back-pressure) fires many times per cell.
const BUDGET: u64 = 2_000;

const SCHEMA: &str = "spt-equivalence-v1";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/equivalence_goldens.json")
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct CellResult {
    threat: ThreatModel,
    config: String,
    workload: String,
    cycles: u64,
    retired: u64,
    /// FNV-1a of the serialized `MachineStats` document: any counter
    /// drifting by one flips this.
    stats_digest: u64,
    /// The attacker-observation digest (transmit timing, cache/TLB state,
    /// engine decision stream).
    obs_digest: u64,
}

fn run_matrix() -> Vec<CellResult> {
    spt_repro::workloads::set_input_seed(0);
    let workloads: Vec<Workload> = full_suite(Scale::Bench);
    let threats = [ThreatModel::Futuristic, ThreatModel::Spectre];
    let mut cells: Vec<(ThreatModel, Config, usize)> = Vec::new();
    for &threat in &threats {
        for cfg in Config::table2(threat) {
            for w in 0..workloads.len() {
                cells.push((threat, cfg, w));
            }
        }
    }
    let results = run_indexed(cells.len(), default_jobs(), |i| {
        let (threat, cfg, w) = cells[i];
        let wl = &workloads[w];
        let mut m = prepare_machine(wl, cfg);
        let out = m
            .run(RunLimits::retired(BUDGET))
            .unwrap_or_else(|e| panic!("{} under {} [{threat}] wedged: {e}", wl.name, cfg.name()));
        let mut stats = Fnv64::new();
        stats.write_bytes(m.stats().to_json().to_string().as_bytes());
        CellResult {
            threat,
            config: cfg.name().to_string(),
            workload: wl.name.to_string(),
            cycles: out.cycles,
            retired: out.retired,
            stats_digest: stats.finish(),
            obs_digest: m.observation_digest(),
        }
    });
    results
}

fn to_document(cells: &[CellResult]) -> Json {
    Json::obj([
        ("schema", Json::str(SCHEMA)),
        ("budget", Json::U64(BUDGET)),
        ("seed", Json::U64(0)),
        (
            "cells",
            Json::arr(cells.iter().map(|c| {
                Json::obj([
                    ("threat", Json::str(c.threat.to_string())),
                    ("config", Json::str(c.config.clone())),
                    ("workload", Json::str(c.workload.clone())),
                    ("cycles", Json::U64(c.cycles)),
                    ("retired", Json::U64(c.retired)),
                    ("stats", Json::str(format!("{:016x}", c.stats_digest))),
                    ("obs", Json::str(format!("{:016x}", c.obs_digest))),
                ])
            })),
        ),
    ])
}

fn parse_threat(s: &str) -> ThreatModel {
    match s {
        "futuristic" => ThreatModel::Futuristic,
        "spectre" => ThreatModel::Spectre,
        other => panic!("golden file has unknown threat model `{other}`"),
    }
}

fn hex_u64(v: &Json, key: &str) -> u64 {
    let s = v.get(key).and_then(Json::as_str).unwrap_or_else(|| panic!("cell missing `{key}`"));
    u64::from_str_radix(s, 16).unwrap_or_else(|e| panic!("cell `{key}` is not hex ({e})"))
}

fn from_document(doc: &Json) -> Vec<CellResult> {
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(SCHEMA),
        "golden file schema mismatch"
    );
    assert_eq!(
        doc.get("budget").and_then(Json::as_u64),
        Some(BUDGET),
        "golden file captured at a different budget — regenerate deliberately"
    );
    doc.get("cells")
        .and_then(Json::as_arr)
        .expect("golden file has a `cells` array")
        .iter()
        .map(|c| CellResult {
            threat: parse_threat(c.get("threat").and_then(Json::as_str).expect("threat")),
            config: c.get("config").and_then(Json::as_str).expect("config").to_string(),
            workload: c.get("workload").and_then(Json::as_str).expect("workload").to_string(),
            cycles: c.get("cycles").and_then(Json::as_u64).expect("cycles"),
            retired: c.get("retired").and_then(Json::as_u64).expect("retired"),
            stats_digest: hex_u64(c, "stats"),
            obs_digest: hex_u64(c, "obs"),
        })
        .collect()
}

#[test]
fn scheduler_is_bit_identical_to_prerewrite_goldens() {
    let cells = run_matrix();

    if std::env::var_os("SPT_BLESS_EQUIVALENCE").is_some() {
        let path = golden_path();
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/data");
        std::fs::write(&path, to_document(&cells).to_string_pretty() + "\n")
            .expect("write goldens");
        eprintln!("blessed {} cells into {}", cells.len(), path.display());
        return;
    }

    let text = std::fs::read_to_string(golden_path()).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); capture goldens from the PRE-rewrite scheduler with \
             SPT_BLESS_EQUIVALENCE=1",
            golden_path().display()
        )
    });
    let golden = from_document(&Json::parse(&text).expect("golden file parses"));
    assert_eq!(
        golden.len(),
        cells.len(),
        "matrix shape changed: golden has {} cells, run produced {}",
        golden.len(),
        cells.len()
    );

    let mut mismatches = Vec::new();
    for (g, c) in golden.iter().zip(&cells) {
        assert_eq!(
            (&g.threat, &g.config, &g.workload),
            (&c.threat, &c.config, &c.workload),
            "cell order changed — matrix enumeration must stay stable"
        );
        if g != c {
            mismatches.push(format!(
                "{} / {} [{}]: cycles {} -> {}, retired {} -> {}, stats {:016x} -> {:016x}, \
                 obs {:016x} -> {:016x}",
                g.config,
                g.workload,
                g.threat,
                g.cycles,
                c.cycles,
                g.retired,
                c.retired,
                g.stats_digest,
                c.stats_digest,
                g.obs_digest,
                c.obs_digest
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} cells diverged from the pre-rewrite scheduler:\n{}",
        mismatches.len(),
        cells.len(),
        mismatches.join("\n")
    );
}
