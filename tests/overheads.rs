//! Performance-shape assertions: the qualitative relationships the paper's
//! evaluation (§9.2) establishes must hold in the reproduction —
//! orderings and crossovers, not absolute numbers.
//!
//! Every simulation goes through a process-wide cycle cache keyed by
//! (workload, config): the unsafe baseline for a given threat model is
//! simulated once and shared by every comparison, and uncached cells are
//! fanned out over the bench crate's worker pool instead of running
//! serially.

use spt_bench::runner::{default_jobs, run_indexed, run_workload};
use spt_repro::core::{Config, ThreatModel};
use spt_repro::workloads::{ct_suite, full_suite, spec_suite, Scale, Workload};
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock, PoisonError};

// Smaller budget under debug builds keeps `cargo test --workspace` fast;
// the qualitative relationships asserted here hold at either size (and the
// full-budget numbers live in EXPERIMENTS.md).
const BUDGET: u64 = if cfg!(debug_assertions) { 4_000 } else { 8_000 };

fn cache() -> &'static Mutex<HashMap<(&'static str, Config), u64>> {
    static CACHE: OnceLock<Mutex<HashMap<(&'static str, Config), u64>>> = OnceLock::new();
    CACHE.get_or_init(Mutex::default)
}

/// Cycle counts for a batch of (workload, config) cells. Cells not yet in
/// the cache are simulated concurrently on the shared worker pool; repeat
/// cells (notably each threat model's UnsafeBaseline) are simulated once
/// per process however many comparisons use them.
fn cycles_batch(pairs: &[(&Workload, Config)]) -> Vec<u64> {
    let fresh: Vec<(&Workload, Config)> = {
        let cached = cache().lock().unwrap_or_else(PoisonError::into_inner);
        let mut seen = HashSet::new();
        pairs
            .iter()
            .filter(|(w, cfg)| !cached.contains_key(&(w.name, *cfg)) && seen.insert((w.name, *cfg)))
            .copied()
            .collect()
    };
    let rows = run_indexed(fresh.len(), default_jobs(), |i| {
        let (w, cfg) = fresh[i];
        run_workload(w, cfg, BUDGET)
    });
    let mut cached = cache().lock().unwrap_or_else(PoisonError::into_inner);
    for ((w, cfg), row) in fresh.iter().zip(rows) {
        let row = row.unwrap_or_else(|e| panic!("simulation wedged: {e}"));
        cached.insert((w.name, *cfg), row.cycles);
    }
    pairs.iter().map(|(w, cfg)| cached[&(w.name, *cfg)]).collect()
}

fn mean_normalized(
    suite: &[Workload],
    config: impl Fn(ThreatModel) -> Config,
    threat: ThreatModel,
) -> f64 {
    let pairs: Vec<(&Workload, Config)> = suite
        .iter()
        .flat_map(|w| [(w, Config::unsafe_baseline(threat)), (w, config(threat))])
        .collect();
    let counts = cycles_batch(&pairs);
    let mut sum = 0.0;
    for pair in counts.chunks_exact(2) {
        sum += pair[1] as f64 / pair[0] as f64;
    }
    sum / suite.len() as f64
}

#[test]
fn spt_beats_secure_baseline_on_average() {
    // §9.2: "SPT effectively reduces the overhead compared to
    // SecureBaseline" — in both attack models.
    let suite = full_suite(Scale::Bench);
    for threat in [ThreatModel::Futuristic, ThreatModel::Spectre] {
        let secure = mean_normalized(&suite, Config::secure_baseline, threat);
        let spt = mean_normalized(&suite, Config::spt_full, threat);
        assert!(spt < secure, "{threat}: SPT ({spt:.3}) must beat SecureBaseline ({secure:.3})");
        assert!(
            (secure - 1.0) / (spt - 1.0).max(0.01) > 2.0,
            "{threat}: overhead reduction should be substantial (paper: 3-3.6x)"
        );
    }
}

#[test]
fn futuristic_costs_more_than_spectre() {
    // The Futuristic VP is strictly later, so protection overhead is
    // strictly higher on average (paper: 45% vs 11%).
    let suite = spec_suite(Scale::Bench);
    let fut = mean_normalized(&suite, Config::spt_full, ThreatModel::Futuristic);
    let spe = mean_normalized(&suite, Config::spt_full, ThreatModel::Spectre);
    assert!(fut > spe, "Futuristic ({fut:.3}) must cost more than Spectre ({spe:.3})");
}

#[test]
fn constant_time_kernels_run_near_baseline_under_spt() {
    // The headline use case (§9.2): constant-time code regains its speed
    // under SPT while SecureBaseline pays heavily.
    let suite = ct_suite(Scale::Bench);
    let threat = ThreatModel::Futuristic;
    let secure = mean_normalized(&suite, Config::secure_baseline, threat);
    let spt = mean_normalized(&suite, Config::spt_full, threat);
    assert!(secure > 1.2, "SecureBaseline must visibly hurt CT kernels, got {secure:.3}");
    assert!(spt < 1.15, "SPT must keep CT kernels near baseline, got {spt:.3}");
}

#[test]
fn each_untaint_mechanism_never_hurts_on_average() {
    // Incremental configurations (Fwd -> Bwd -> ShadowL1) each reduce (or
    // preserve) mean overhead, as in the paper's incremental evaluation.
    let suite = full_suite(Scale::Bench);
    let threat = ThreatModel::Futuristic;
    let secure = mean_normalized(&suite, Config::secure_baseline, threat);
    let fwd = mean_normalized(&suite, Config::spt_fwd, threat);
    let bwd = mean_normalized(&suite, Config::spt_bwd, threat);
    let full = mean_normalized(&suite, Config::spt_full, threat);
    let eps = 0.01;
    assert!(fwd < secure, "forward untainting must help: {fwd:.3} vs {secure:.3}");
    assert!(bwd <= fwd + eps, "backward untainting must not hurt: {bwd:.3} vs {fwd:.3}");
    assert!(full <= bwd + eps, "shadow L1 must not hurt: {full:.3} vs {bwd:.3}");
}

#[test]
fn ideal_propagation_is_close_to_bounded_width() {
    // §9.2: "SPT{Ideal,ShadowMem} provides negligible improvement over
    // SPT{Bwd,ShadowMem}": width 3 does not bottleneck propagation.
    let suite = spec_suite(Scale::Bench);
    let threat = ThreatModel::Futuristic;
    let smem = mean_normalized(&suite, Config::spt_shadow_mem, threat);
    let ideal = mean_normalized(&suite, Config::spt_ideal, threat);
    assert!(
        (smem - ideal).abs() < 0.05,
        "ideal ({ideal:.3}) should be within noise of bounded ({smem:.3})"
    );
}

#[test]
fn stt_is_cheaper_than_spt() {
    // STT's narrower protection scope costs less (paper: SPT adds 3.3/26.1
    // percentage points over STT).
    let suite = full_suite(Scale::Bench);
    for threat in [ThreatModel::Futuristic, ThreatModel::Spectre] {
        let stt = mean_normalized(&suite, Config::stt, threat);
        let spt = mean_normalized(&suite, Config::spt_full, threat);
        assert!(
            stt <= spt + 0.01,
            "{threat}: STT ({stt:.3}) must not cost more than SPT ({spt:.3})"
        );
    }
}

#[test]
fn unsafe_baseline_is_the_fastest() {
    let suite = full_suite(Scale::Bench);
    let threat = ThreatModel::Futuristic;
    let pairs: Vec<(&Workload, Config)> = suite
        .iter()
        .take(8)
        .flat_map(|w| {
            [
                (w, Config::unsafe_baseline(threat)),
                (w, Config::spt_full(threat)),
                (w, Config::secure_baseline(threat)),
            ]
        })
        .collect();
    let counts = cycles_batch(&pairs);
    for (w, group) in suite.iter().zip(counts.chunks_exact(3)) {
        let base = group[0];
        for &c in &group[1..] {
            // 10% relative slack, not a fixed cycle count: protection can
            // legitimately run slightly *faster* than UnsafeBaseline on
            // pointer-chasing workloads (e.g. deepsjeng), because the
            // baseline's wrong-path loads of hashed addresses pollute the
            // cache, while delaying those transmitters leaves the cache
            // warm for the correct path. The paper's own Figure 7 shows
            // sub-1.0 cells for the same reason.
            assert!(
                c + base / 10 >= base,
                "{}: protection can't be meaningfully faster than no protection ({c} vs {base})",
                w.name
            );
        }
    }
}
