//! Observability-layer guarantees:
//!
//! * attaching a trace sink and enabling telemetry is *measurement only* —
//!   cycle counts and attacker-observation digests are bit-identical to a
//!   plain run of the same (workload, config) cell;
//! * the emitted trace is well-formed O3PipeView and covers every retired
//!   and squashed instruction;
//! * a wedged program surfaces as a [`SweepError`] wrapping
//!   [`SimError::Deadlock`] carrying the cell identity, not a panic.

use spt_bench::runner::{prepare_machine, run_prepared, run_workload, SweepError};
use spt_repro::core::{Config, ThreatModel};
use spt_repro::isa::asm::Assembler;
use spt_repro::isa::Reg;
use spt_repro::ooo::SimError;
use spt_repro::workloads::{ct_suite, spec_suite, Category, Scale, Workload};
use spt_util::{parse_o3_trace, validate_o3_trace, MemorySink, O3PipeViewSink};

const BUDGET: u64 = 2_000;

fn observed_configs() -> Vec<Config> {
    vec![
        Config::unsafe_baseline(ThreatModel::Futuristic),
        Config::spt_full(ThreatModel::Futuristic),
        Config::spt_full(ThreatModel::Spectre),
        Config::stt(ThreatModel::Futuristic),
    ]
}

#[test]
fn tracing_and_telemetry_are_zero_cost() {
    let mut workloads = vec![ct_suite(Scale::Bench)[1].clone()]; // chacha20
    workloads.push(spec_suite(Scale::Bench)[1].clone()); // branchy SPEC proxy
    for w in &workloads {
        for cfg in observed_configs() {
            let plain = run_workload(w, cfg, BUDGET).expect("plain run completes");
            let mut m = prepare_machine(w, cfg);

            let mut observed = prepare_machine(w, cfg);
            observed.set_trace_sink(Box::new(MemorySink::new()));
            observed.enable_telemetry();
            let row = run_prepared(&mut observed, w, cfg, BUDGET).expect("traced run completes");

            assert_eq!(plain.cycles, row.cycles, "{} under {cfg}: cycle count changed", w.name);
            assert_eq!(plain.retired, row.retired, "{} under {cfg}: retired changed", w.name);
            let _ = m.run(spt_repro::ooo::RunLimits::retired(BUDGET)).expect("digest run");
            assert_eq!(
                m.observation_digest(),
                observed.observation_digest(),
                "{} under {cfg}: attacker-observation digest changed with tracing on",
                w.name
            );
            assert!(
                observed.telemetry().expect("telemetry enabled").rob_occupancy.samples() > 0,
                "telemetry sampled nothing"
            );
        }
    }
}

#[test]
fn o3_trace_is_well_formed_and_complete() {
    let w = &ct_suite(Scale::Bench)[1]; // chacha20
    let cfg = Config::spt_full(ThreatModel::Futuristic);
    let dir = std::env::temp_dir().join("spt_observability_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.out");
    {
        let mut m = prepare_machine(w, cfg);
        let file = std::fs::File::create(&path).expect("create trace file");
        m.set_trace_sink(Box::new(O3PipeViewSink::new(file)));
        run_prepared(&mut m, w, cfg, BUDGET).expect("run completes");
        m.take_trace_sink().expect("sink attached").flush().expect("flush");
    }
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_dir_all(&dir);
    let summary = validate_o3_trace(&text).expect("well-formed O3PipeView");
    assert!(summary.retired >= BUDGET, "trace covers every retired instruction");
    assert_eq!(
        summary.instructions,
        summary.retired + summary.squashed,
        "every traced instruction either retired or was squashed"
    );
}

#[test]
fn event_emitting_sink_is_also_zero_cost() {
    // `O3PipeViewSink::with_events` adds SPTEvent lines to the output
    // stream; like the plain sink, attaching it must not perturb timing.
    let w = &spec_suite(Scale::Bench)[2]; // mcf: transmitter-heavy
    let cfg = Config::spt_full(ThreatModel::Futuristic);
    let plain = run_workload(w, cfg, BUDGET).expect("plain run completes");

    let dir = std::env::temp_dir().join("spt_observability_events");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.trace");
    let mut m = prepare_machine(w, cfg);
    let file = std::fs::File::create(&path).expect("create trace file");
    m.set_trace_sink(Box::new(O3PipeViewSink::with_events(file)));
    let row = run_prepared(&mut m, w, cfg, BUDGET).expect("traced run completes");
    m.take_trace_sink().expect("sink attached").flush().expect("flush");
    assert_eq!(plain.cycles, row.cycles, "event sink changed cycle count");
    assert_eq!(plain.stats.transmitter_delay_cycles, row.stats.transmitter_delay_cycles);

    let text = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_dir_all(&dir);
    let parsed = parse_o3_trace(&text).expect("event trace parses");
    let summary = parsed.summary();
    assert!(summary.events > 0, "SPT run under with_events must record events");
    assert!(
        parsed
            .events
            .iter()
            .any(|e| matches!(e.kind, spt_util::ParsedEventKind::TransmitterDelayed { .. })),
        "mcf under SPT must log transmitter delays"
    );
    // The strict validator accepts event-bearing traces too.
    assert_eq!(validate_o3_trace(&text).expect("validates").events, summary.events);
}

#[test]
fn squash_epochs_are_distinguished_by_fresh_seqs() {
    // A re-fetched instruction after a branch misprediction must be
    // distinguishable from its squashed first fetch. The machine never
    // reuses sequence numbers, so the same PC appears once squashed and
    // once retired under *different* seqs — assert exactly that on a
    // workload with guaranteed mispredictions.
    use std::sync::{Arc, Mutex};

    /// Delegating sink that leaves the captured records reachable after
    /// the machine consumes the boxed trait object.
    struct SharedSink(Arc<Mutex<MemorySink>>);
    impl spt_util::TraceSink for SharedSink {
        fn inst(&mut self, rec: &spt_util::InstRecord<'_>) {
            self.0.lock().unwrap().inst(rec);
        }
        fn event(&mut self, cycle: u64, ev: &spt_util::SptTraceEvent) {
            self.0.lock().unwrap().event(cycle, ev);
        }
    }

    let w = &spec_suite(Scale::Bench)[1]; // branchy SPEC proxy
    let cfg = Config::unsafe_baseline(ThreatModel::Futuristic);
    let shared = Arc::new(Mutex::new(MemorySink::new()));
    let mut m = prepare_machine(w, cfg);
    m.set_trace_sink(Box::new(SharedSink(Arc::clone(&shared))));
    run_prepared(&mut m, w, cfg, BUDGET).expect("run completes");
    drop(m.take_trace_sink());
    let mem = Arc::try_unwrap(shared).ok().expect("sole owner").into_inner().unwrap();
    let mut seen = std::collections::HashSet::new();
    let mut squashed_pcs = std::collections::HashSet::new();
    let mut refetched = 0usize;
    for rec in &mem.insts {
        assert!(seen.insert(rec.seq), "seq {} reused across squash epochs", rec.seq);
        if rec.retire_cycle.is_none() {
            squashed_pcs.insert(rec.pc);
        } else if squashed_pcs.contains(&rec.pc) {
            refetched += 1;
        }
    }
    let squashes = mem.insts.iter().filter(|r| r.retire_cycle.is_none()).count();
    assert!(squashes > 0, "branchy workload must squash");
    assert!(
        refetched > 0,
        "at least one squashed PC must be re-fetched and retired under a fresh seq"
    );
}

/// A program whose only path runs off the end without `Halt`: fetch
/// stalls waiting for a redirect that never comes, nothing retires, and
/// the watchdog must fire.
fn wedged_workload() -> Workload {
    let mut a = Assembler::new();
    a.mov_imm(Reg::R1, 7);
    a.mov_imm(Reg::R2, 9);
    let program = a.assemble().expect("assembles");
    Workload {
        name: "wedged",
        category: Category::SpecInt,
        description: "runs off the end without halting (watchdog test)",
        program,
        mem_init: vec![],
        secret_ranges: vec![],
    }
}

#[test]
fn deadlock_watchdog_reports_cell_identity() {
    let w = wedged_workload();
    let cfg = Config::spt_full(ThreatModel::Futuristic);
    let err: SweepError =
        run_workload(&w, cfg, BUDGET).expect_err("wedged program must not complete");
    assert_eq!(err.workload, "wedged");
    assert_eq!(err.config, cfg.name());
    assert_eq!(err.threat, ThreatModel::Futuristic);
    match err.source {
        SimError::Deadlock { cycle, retired, head_pc } => {
            assert!(cycle > 100_000, "watchdog horizon respected (fired at {cycle})");
            assert_eq!(retired, 2, "both movs retired before the wedge");
            assert_eq!(head_pc, None, "ROB drained before the stall");
        }
    }
    let text = err.to_string();
    assert!(text.contains("wedged"), "display names the workload: {text}");
    assert!(text.contains("deadlock"), "display names the failure: {text}");
}
