//! Property-based end-to-end tests: randomly generated programs must
//! behave identically on the reference interpreter and on the out-of-order
//! pipeline under every protection configuration.
//!
//! Programs are generated to terminate by construction: random ALU
//! operations, loads/stores confined to a scratch region, and only
//! *forward* conditional branches (no cycles), closed by `Halt`.

use proptest::prelude::*;
use spt_repro::core::{Config, ThreatModel};
use spt_repro::isa::asm::Assembler;
use spt_repro::isa::interp::Interp;
use spt_repro::isa::{AluOp, BranchCond, Inst, MemSize, Program, Reg};
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};

const SCRATCH: u64 = 0x8000;
const SCRATCH_WORDS: u64 = 64;

#[derive(Clone, Debug)]
enum Op {
    MovImm { rd: u8, imm: i16 },
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    AluImm { op: u8, rd: u8, rs1: u8, imm: i16 },
    Load { rd: u8, slot: u8, size: u8 },
    LoadIdx { rd: u8, idx: u8 },
    Store { rs: u8, slot: u8, size: u8 },
    SkipIf { cond: u8, rs1: u8, rs2: u8, dist: u8 },
}

fn alu_op(code: u8) -> AluOp {
    match code % 13 {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Sar,
        8 => AluOp::Mul,
        9 => AluOp::Slt,
        10 => AluOp::Sltu,
        11 => AluOp::Seq,
        _ => AluOp::Sne,
    }
}

fn mem_size(code: u8) -> MemSize {
    match code % 4 {
        0 => MemSize::B1,
        1 => MemSize::B2,
        2 => MemSize::B4,
        _ => MemSize::B8,
    }
}

fn cond(code: u8) -> BranchCond {
    match code % 6 {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        _ => BranchCond::Geu,
    }
}

// r1..r12 are data registers; r13 holds the scratch base; r14 a masked
// index for indexed loads.
fn reg(code: u8) -> Reg {
    Reg::from_index(1 + (code as usize % 12))
}

fn build(ops: &[Op]) -> Program {
    let base = Reg::R13;
    let idx = Reg::R14;
    let mut a = Assembler::new();
    a.mov_imm(base, SCRATCH as i64);
    a.mov_imm(idx, 0);
    let mut pending_skips: Vec<(usize, usize)> = Vec::new(); // (branch pc, remaining ops)
    for (k, op) in ops.iter().enumerate() {
        // Resolve skip labels that land here.
        pending_skips.retain(|&(pc, until)| {
            if until == k {
                a.label(&format!("skip{pc}"));
                false
            } else {
                true
            }
        });
        match *op {
            Op::MovImm { rd, imm } => {
                a.mov_imm(reg(rd), imm as i64);
            }
            Op::Alu { op, rd, rs1, rs2 } => {
                a.alu(alu_op(op), reg(rd), reg(rs1), reg(rs2));
            }
            Op::AluImm { op, rd, rs1, imm } => {
                a.alu_imm(alu_op(op), reg(rd), reg(rs1), imm as i64);
            }
            Op::Load { rd, slot, size } => {
                let off = (slot as u64 % SCRATCH_WORDS) * 8;
                a.load(reg(rd), base, off as i64, mem_size(size));
            }
            Op::LoadIdx { rd, idx: i } => {
                // Mask a data register into a bounded index and gather.
                a.andi(idx, reg(i), (SCRATCH_WORDS - 1) as i64);
                a.ldx8(reg(rd), base, idx);
            }
            Op::Store { rs, slot, size } => {
                let off = (slot as u64 % SCRATCH_WORDS) * 8;
                a.store(reg(rs), base, off as i64, mem_size(size));
            }
            Op::SkipIf { cond: c, rs1, rs2, dist } => {
                let until = (k + 1 + (dist as usize % 5) + 1).min(ops.len());
                let pc = a.pc() as usize;
                a.branch(cond(c), reg(rs1), reg(rs2), &format!("skip{pc}"));
                pending_skips.push((pc, until));
            }
        }
    }
    for (pc, _) in pending_skips {
        a.label(&format!("skip{pc}"));
    }
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i16>()).prop_map(|(rd, imm)| Op::MovImm { rd, imm }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op, rd, rs1, rs2)| Op::Alu { op, rd, rs1, rs2 }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>())
            .prop_map(|(op, rd, rs1, imm)| Op::AluImm { op, rd, rs1, imm }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(rd, slot, size)| Op::Load {
            rd,
            slot,
            size
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(rd, idx)| Op::LoadIdx { rd, idx }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(rs, slot, size)| Op::Store {
            rs,
            slot,
            size
        }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(cond, rs1, rs2, dist)| Op::SkipIf { cond, rs1, rs2, dist }),
    ]
}

fn final_state(program: &Program, config: Config) -> (u64, Vec<u64>, Vec<u64>) {
    let mut m = Machine::new(program.clone(), CoreConfig::default(), config);
    let out = m.run(RunLimits::default()).expect("pipeline runs");
    let regs = Reg::all().map(|r| m.reg(r)).collect();
    let mem = (0..SCRATCH_WORDS).map(|i| m.mem().store_ref().read(SCRATCH + 8 * i, 8)).collect();
    (out.retired, regs, mem)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_match_interpreter_under_all_protections(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let program = build(&ops);

        let mut interp = Interp::new(&program);
        interp.run(100_000).expect("interp halts");
        let ref_regs: Vec<u64> = Reg::all().map(|r| interp.reg(r)).collect();
        let ref_mem: Vec<u64> =
            (0..SCRATCH_WORDS).map(|i| interp.mem().read(SCRATCH + 8 * i, 8)).collect();

        for config in [
            Config::unsafe_baseline(ThreatModel::Futuristic),
            Config::secure_baseline(ThreatModel::Futuristic),
            Config::spt_full(ThreatModel::Futuristic),
            Config::spt_ideal(ThreatModel::Futuristic),
            Config::stt(ThreatModel::Spectre),
            Config::spt_full(ThreatModel::Spectre),
        ] {
            let (retired, regs, mem) = final_state(&program, config);
            prop_assert_eq!(retired, interp.retired(), "retired under {}", config);
            prop_assert_eq!(&regs, &ref_regs, "registers under {}", config);
            prop_assert_eq!(&mem, &ref_mem, "memory under {}", config);
        }
    }

    #[test]
    fn random_programs_on_tiny_core(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let program = build(&ops);
        let mut interp = Interp::new(&program);
        interp.run(100_000).expect("interp halts");

        let mut m = Machine::new(
            program.clone(),
            CoreConfig::tiny(),
            Config::spt_full(ThreatModel::Futuristic),
        );
        let out = m.run(RunLimits::default()).expect("tiny core runs");
        prop_assert_eq!(out.retired, interp.retired());
        for r in Reg::all() {
            prop_assert_eq!(m.reg(r), interp.reg(r), "register {}", r);
        }
    }

    #[test]
    fn encode_decode_roundtrip_random_programs(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        use spt_repro::isa::encode::{decode, encode};
        let program = build(&ops);
        for &inst in program.insts() {
            let word = encode(inst).expect("encodable");
            prop_assert_eq!(decode(word).expect("decodable"), inst);
        }
        // Halt is a fixed point of the codec and terminates every program.
        prop_assert_eq!(program.insts().last(), Some(&Inst::Halt));
    }
}
