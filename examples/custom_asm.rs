//! Write your own victim in textual assembly and measure it under every
//! protection configuration — the fastest way to experiment with SPT.
//!
//! ```text
//! cargo run --release --example custom_asm
//! ```

use spt_repro::core::{Config, ThreatModel};
use spt_repro::isa::parse::parse_program;
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};

// A binary-search kernel: the probe addresses depend on loaded data, so
// delay-based protections pay on every level of the search.
const PROGRAM: &str = "
    movi r1, 0x4000        ; sorted table of 256 words
    movi r2, 7777          ; search key (will not be found exactly)
    movi r10, 0            ; iteration counter
    movi r11, 400          ; iterations
outer:
    movi r3, 0             ; lo
    movi r4, 256           ; hi
search:
    sub r5, r4, r3
    sltui r6, r5, 2        ; done when hi - lo < 2
    bne r6, r0, done
    add r5, r3, r4
    shri r5, r5, 1         ; mid
    ld8 r7, [r1+r5<<3]     ; table[mid] — loaded value steers the branch
    bltu r2, r7, go_left
    mov r3, r5
    j search
go_left:
    mov r4, r5
    j search
done:
    addi r10, r10, 1
    blt r10, r11, outer
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROGRAM)?;
    println!("parsed {} instructions\n", program.len());
    println!("{:<26} {:>9} {:>10}", "configuration", "cycles", "vs unsafe");

    let mut base = None;
    for config in [
        Config::unsafe_baseline(ThreatModel::Futuristic),
        Config::stt(ThreatModel::Futuristic),
        Config::spt_full(ThreatModel::Futuristic),
        Config::spt_sdo(ThreatModel::Futuristic),
        Config::secure_baseline(ThreatModel::Futuristic),
    ] {
        let mut m = Machine::new(program.clone(), CoreConfig::default(), config);
        // A sorted table 0, 64, 128, ...
        for i in 0..256u64 {
            m.mem_mut().store().write(0x4000 + 8 * i, i * 64, 8);
        }
        let out = m.run(RunLimits::default())?;
        let b = *base.get_or_insert(out.cycles as f64);
        println!("{:<26} {:>9} {:>9.2}x", format!("{config}"), out.cycles, out.cycles as f64 / b);
    }
    println!("\nEdit the PROGRAM string and re-run to explore your own kernels.");
    Ok(())
}
