//! Pipeline observability end to end: run one workload under the full SPT
//! design with an O3PipeView trace and telemetry enabled, then validate
//! the trace and print the occupancy/latency histograms.
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```
//!
//! The trace written to `results/trace_pipeline.out` is gem5
//! O3PipeView-format, so it loads directly in Konata
//! (<https://github.com/shioyadan/Konata>): File → Open → pick the file.

use spt_bench::runner::{prepare_machine, run_prepared};
use spt_bench::statsdoc::run_document;
use spt_repro::core::{Config, ThreatModel};
use spt_util::{validate_o3_trace, O3PipeViewSink};
use std::path::Path;

fn main() {
    let suite = spt_repro::workloads::ct_suite(spt_repro::workloads::Scale::Bench);
    let w = &suite[1]; // chacha20: short, branchy enough to show squashes
    let cfg = Config::spt_full(ThreatModel::Futuristic);
    let budget = 2_000;

    let trace_path = Path::new("results/trace_pipeline.out");
    if let Some(dir) = trace_path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let file = std::fs::File::create(trace_path).expect("create trace file");

    let mut m = prepare_machine(w, cfg);
    // `with_events` interleaves SPTEvent: lines (taint/untaint/stall
    // causes) that `tracediff` consumes; Konata skips them.
    m.set_trace_sink(Box::new(O3PipeViewSink::with_events(file)));
    m.enable_telemetry();
    run_prepared(&mut m, w, cfg, budget).expect("run completes");
    m.take_trace_sink().expect("sink attached").flush().expect("trace written");

    let text = std::fs::read_to_string(trace_path).expect("read trace back");
    let summary = validate_o3_trace(&text).expect("trace is well-formed O3PipeView");
    println!("wrote {} — load it in Konata to scrub the pipeline", trace_path.display());
    println!(
        "trace: {} instructions ({} retired, {} squashed)",
        summary.instructions, summary.retired, summary.squashed
    );

    let doc = run_document(&m, w.name, cfg.name(), budget);
    println!("\nspt-stats-v1 document (also what `run_spt --stats-json` writes):");
    println!("{}", doc.to_string_pretty());
}
