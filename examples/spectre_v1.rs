//! Spectre V1 penetration test (paper §9.1): run the bounds-check-bypass
//! attack against every configuration and report which ones leak.
//!
//! The receiver is an in-simulator cache-timing observer: after the victim
//! runs, it checks which probe-array line became cached — exactly the
//! signal Flush+Reload measures via latency.
//!
//! ```text
//! cargo run --release --example spectre_v1
//! ```

use spt_repro::core::{Config, ThreatModel};
use spt_repro::mem::Level;
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};
use spt_repro::workloads::attacks::{self, Attack};

fn leak(attack: &Attack, config: Config) -> bool {
    let mut m = Machine::new(attack.workload.program.clone(), CoreConfig::default(), config);
    attack.workload.apply_memory(m.mem_mut().store());
    m.run(RunLimits::default()).expect("attack runs");
    m.probe(attack.leak_addr()) != Level::Dram
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let attacks = [attacks::spectre_v1(), attacks::ct_secret(), attacks::implicit_branch()];
    println!("Penetration testing (paper §9.1) — three attacks, four defenses:\n");
    println!("  spectre_v1      transient out-of-bounds read (explicit channel)");
    println!("  ct_secret       transmit gadget on a non-speculative secret");
    println!("  implicit_branch transient resolution redirect on a secret predicate\n");

    for threat in [ThreatModel::Futuristic, ThreatModel::Spectre] {
        println!("--- {threat} model ---");
        print!("{:<18}", "attack");
        for name in ["Unsafe", "SecureBase", "SPT", "STT"] {
            print!("{name:>12}");
        }
        println!();
        for attack in &attacks {
            print!("{:<18}", attack.workload.name);
            for config in [
                Config::unsafe_baseline(threat),
                Config::secure_baseline(threat),
                Config::spt_full(threat),
                Config::stt(threat),
            ] {
                let l = leak(attack, config);
                print!("{:>12}", if l { "LEAKED" } else { "safe" });
            }
            println!();
        }
        println!();
    }
    println!("Spectre V1 reads *speculatively accessed* data: STT's scope covers it.");
    println!("The other two leak *non-speculative secrets* — data a constant-time");
    println!("program loaded architecturally but never transmitted. Only SPT (and the");
    println!("slow SecureBaseline) block those; STT's protection scope misses them.");
    Ok(())
}
