//! Quickstart: assemble a small program, run it on the out-of-order
//! simulator under several protection configurations, and compare timing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spt_repro::core::{Config, ThreatModel};
use spt_repro::isa::asm::Assembler;
use spt_repro::isa::Reg;
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pointer-chasing loop: each load's address is the previous load's
    // result — the pattern speculative-execution defenses find hardest.
    let mut a = Assembler::new();
    a.mov_imm(Reg::R1, 0x1000); // list head
    a.mov_imm(Reg::R2, 0); // sum
    a.mov_imm(Reg::R3, 0); // count
    a.mov_imm(Reg::R4, 64); // nodes to visit
    a.label("walk");
    a.ld(Reg::R5, Reg::R1, 8); // payload
    a.add(Reg::R2, Reg::R2, Reg::R5);
    a.ld(Reg::R1, Reg::R1, 0); // next pointer
    a.addi(Reg::R3, Reg::R3, 1);
    a.blt(Reg::R3, Reg::R4, "walk");
    a.halt();
    let program = a.assemble()?;

    // Build a 64-node ring in memory.
    let nodes = 64u64;
    let node = |i: u64| 0x1000 + (i % nodes) * 0x40;

    println!("{:<22} {:>9} {:>8} {:>7}", "configuration", "cycles", "retired", "IPC");
    for config in [
        Config::unsafe_baseline(ThreatModel::Futuristic),
        Config::secure_baseline(ThreatModel::Futuristic),
        Config::spt_full(ThreatModel::Futuristic),
        Config::stt(ThreatModel::Futuristic),
        Config::spt_full(ThreatModel::Spectre),
    ] {
        let mut m = Machine::new(program.clone(), CoreConfig::default(), config);
        for i in 0..nodes {
            m.mem_mut().store().write(node(i), node(i + 1), 8);
            m.mem_mut().store().write(node(i) + 8, i * 3, 8);
        }
        let out = m.run(RunLimits::default())?;
        // Architectural results never depend on the protection.
        assert_eq!(m.reg(Reg::R2), (0..64).map(|i| i * 3).sum::<u64>());
        println!(
            "{:<22} {:>9} {:>8} {:>7.2}",
            format!("{config}"),
            out.cycles,
            out.retired,
            out.retired as f64 / out.cycles as f64
        );
    }
    println!("\nSame architectural result everywhere; only the timing differs.");
    Ok(())
}
