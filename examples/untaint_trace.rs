//! A microscope on SPT's untaint algebra: drive the taint engine directly
//! through the paper's Figure 3/4 scenarios and print each cycle's
//! broadcasts.
//!
//! ```text
//! cargo run --release --example untaint_trace
//! ```

use spt_repro::core::engine::RenameInfo;
use spt_repro::core::{Config, TaintEngine, ThreatModel};
use spt_repro::isa::{InstClass, OperandRole};

fn step_and_print(e: &mut TaintEngine, label: &str) {
    let r = e.step();
    if r.broadcasts.is_empty() {
        println!("  [{label}] (no broadcasts)");
    } else {
        for (phys, kind) in r.broadcasts {
            println!("  [{label}] untaint p{phys} via {kind}");
        }
    }
}

fn main() {
    println!("Paper Figure 4: forward + backward untaint through an ADD\n");
    println!("  I1: r0 = r1 + r2");
    println!("  I2: load r3 <- (r0)      (reaches VP -> declassifies r0)");
    println!("  I3: r4 = r0 + r2");
    println!("  I4: load r5 <- (r2)      (reaches VP -> declassifies r2)\n");

    let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 32);
    let data = OperandRole::Data;
    let addr = OperandRole::Address;
    e.rename(RenameInfo {
        seq: 1,
        class: InstClass::Invertible2,
        srcs: [Some((1, data)), Some((2, data)), None],
        dest: Some(0),
        load_bytes: None,
    });
    e.rename(RenameInfo {
        seq: 2,
        class: InstClass::Load,
        srcs: [Some((0, addr)), None, None],
        dest: Some(3),
        load_bytes: Some(8),
    });
    e.rename(RenameInfo {
        seq: 3,
        class: InstClass::Invertible2,
        srcs: [Some((0, data)), Some((2, data)), None],
        dest: Some(4),
        load_bytes: None,
    });
    e.rename(RenameInfo {
        seq: 4,
        class: InstClass::Load,
        srcs: [Some((2, addr)), None, None],
        dest: Some(5),
        load_bytes: Some(8),
    });

    println!("both loads reach the visibility point:");
    e.declassify_vp(2);
    e.declassify_vp(4);
    step_and_print(&mut e, "cycle 1"); // r0, r2 declassified
    step_and_print(&mut e, "cycle 2"); // r1 backward (r1 = r0 - r2), r4 forward
    step_and_print(&mut e, "cycle 3");

    println!(
        "\nFinal taint: r0={} r1={} r2={} r4={}",
        e.reg_taint(0),
        e.reg_taint(1),
        e.reg_taint(2),
        e.reg_taint(4)
    );
    println!("\nThe attacker, knowing the ROB contents (Property 1), computed");
    println!("r1 = r0 - r2 from two declassified values — so SPT stops protecting");
    println!("r1: it carries no information the attacker does not already have.");
}
