//! The paper's motivating scenario (§3): attacking a *non-speculative
//! secret* held by constant-time code — and the overhead of protecting it.
//!
//! Part 1 runs the `ct_secret` attack: a key byte loaded by a retired load
//! (never passed to any transmitter) is exfiltrated through a mistrained
//! indirect jump. STT does **not** block this — the data is not
//! speculatively accessed. SPT does.
//!
//! Part 2 measures what that protection costs on real constant-time
//! kernels (ChaCha20, a bitsliced permutation, a sorting network):
//! SecureBaseline pays heavily; SPT runs near baseline speed — the
//! paper's headline result.
//!
//! ```text
//! cargo run --release --example constant_time
//! ```

use spt_repro::core::{Config, ThreatModel};
use spt_repro::mem::Level;
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};
use spt_repro::workloads::{attacks, ct, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the attack ----
    let attack = attacks::ct_secret();
    println!("Part 1 — leaking a non-speculative secret (key byte = {})", attack.secret);
    println!("{:<24} {:>10}", "configuration", "LEAKED?");
    let threat = ThreatModel::Futuristic;
    for config in [
        Config::unsafe_baseline(threat),
        Config::stt(threat),
        Config::spt_full(threat),
        Config::secure_baseline(threat),
    ] {
        let mut m = Machine::new(attack.workload.program.clone(), CoreConfig::default(), config);
        attack.workload.apply_memory(m.mem_mut().store());
        m.run(RunLimits::default())?;
        let leaked = m.probe(attack.leak_addr()) != Level::Dram;
        println!("{:<24} {:>10}", format!("{config}"), if leaked { "LEAKED" } else { "safe" });
    }
    println!("\nSTT leaks here: the secret was accessed *non-speculatively*, outside");
    println!("its protection scope. SPT keeps it tainted because the program never");
    println!("transmits it — it is a non-speculative secret (paper §3).\n");

    // ---- Part 2: the cost of protection on constant-time kernels ----
    println!("Part 2 — protection overhead on constant-time kernels (Futuristic)");
    println!("{:<12} {:>14} {:>16} {:>10}", "kernel", "UnsafeBase", "SecureBaseline", "SPT");
    for w in ct::suite(Scale::Bench) {
        let mut cycles = Vec::new();
        for config in [
            Config::unsafe_baseline(threat),
            Config::secure_baseline(threat),
            Config::spt_full(threat),
        ] {
            let mut m = Machine::new(w.program.clone(), CoreConfig::default(), config);
            w.apply_memory(m.mem_mut().store());
            let out = m.run(RunLimits::retired(20_000))?;
            cycles.push(out.cycles as f64);
        }
        println!(
            "{:<12} {:>14.2} {:>16.2} {:>10.2}",
            w.name,
            1.0,
            cycles[1] / cycles[0],
            cycles[2] / cycles[0]
        );
    }
    println!("\nSPT extends constant-time guarantees to speculative execution at a");
    println!("fraction of SecureBaseline's cost (paper: 2.8x -> 1.10x, an 18x reduction).");
    Ok(())
}
