//! The paper's §5 untaint algebra at the gate level: reproduces the
//! reasoning of Figures 2 and 3 step by step, including the GLIFT-style
//! value-aware rules the hardware implementation conservatively omits.
//!
//! ```text
//! cargo run --release --example gate_algebra
//! ```

use spt_repro::core::gates::{backward_untaint, Circuit, Gate, GateKind, Wire};

fn show(c: &Circuit, label: &str) {
    print!("  {label:<28}");
    for name in c.wire_names() {
        print!("{name}={} ", c.get(name));
    }
    println!();
}

fn main() {
    println!("Figure 2 — backward information flow through an AND gate");
    println!("(ᵗ marks tainted/secret bits)\n");
    for (a, b) in [(true, true), (false, true), (true, false), (false, false)] {
        let (ia, ib) = backward_untaint(GateKind::And, Wire::secret(a), Wire::secret(b));
        let out = a && b;
        println!(
            "  out = AND({}ᵗ, {}ᵗ) = {} declassified  =>  in1 {}, in2 {}",
            a as u8,
            b as u8,
            out as u8,
            if ia { "INFERABLE" } else { "still secret" },
            if ib { "INFERABLE" } else { "still secret" },
        );
    }
    println!("\n  Only out = 1 determines both inputs — exactly the paper's table.\n");

    println!("Figure 3 — composition: in1 = OR(t0, t1); out = AND(in1, in2)\n");
    let mut c = Circuit::new(vec![
        Gate { kind: GateKind::Or, inputs: ["t0", "t1"], output: "in1" },
        Gate { kind: GateKind::And, inputs: ["in1", "in2"], output: "out" },
    ]);
    c.set("t0", Wire::secret(false));
    c.set("t1", Wire::secret(false));
    c.set("in2", Wire::public(true));
    c.evaluate();
    show(&c, "initial state:");
    c.declassify("out");
    show(&c, "1. declassify(out):");
    c.propagate();
    show(&c, "2-3. propagate to fixpoint:");
    println!();
    println!("  out = 0 with in2 = 1 public forces in1 = 0 (backward through AND);");
    println!("  in1 = 0 through an OR forces t0 = t1 = 0 (backward through OR).");
    println!("  The attacker learned t0 and t1 without any new leakage — so SPT");
    println!("  may stop protecting them. That is the ripple effect of §5.");
}
